(** SHA-256 (FIPS 180-4), pure OCaml.

    Used for Fiat–Shamir transcript hashing and for seeding the
    deterministic CSPRNG.  Incremental and one-shot interfaces. *)

type ctx

val init : unit -> ctx
val feed_bytes : ctx -> Bytes.t -> unit
val feed_string : ctx -> string -> unit

val finalize : ctx -> Bytes.t
(** 32-byte digest.  The context must not be reused afterwards. *)

val digest_bytes : Bytes.t -> Bytes.t
val digest_string : string -> Bytes.t

val hex_of_digest : Bytes.t -> string

val hmac : key:Bytes.t -> Bytes.t -> Bytes.t
(** HMAC-SHA256 (RFC 2104). *)

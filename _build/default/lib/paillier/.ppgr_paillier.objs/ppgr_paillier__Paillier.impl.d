lib/paillier/paillier.ml: Bigint Ppgr_bigint Ppgr_rng Prime Rng

lib/paillier/paillier.mli: Bigint Ppgr_bigint Ppgr_rng

(** The Paillier cryptosystem (additively homomorphic public-key
    encryption over [Z_{n^2}]), cited by the paper (§II, [10]) as the
    classic partially homomorphic alternative to exponential ElGamal.

    Unlike exponential ElGamal, decryption recovers the full plaintext
    (no discrete logarithm needed), so it suits protocols that must read
    homomorphic sums.  It is {e not} a drop-in for the paper's phase 2:
    the unlinkable comparison depends on ElGamal's trivially distributed
    key generation ([y = Π y_i]) and component-wise partial decryption,
    which Paillier lacks without heavyweight threshold machinery —
    exactly the §II discussion.  Provided as a substrate with the same
    homomorphic API shape, plus tests and a bench micro-entry.

    Textbook scheme (g = n + 1 simplification):
    - keygen: [n = p q] for primes p, q; [λ = lcm(p-1, q-1)];
      [μ = λ^{-1} mod n].
    - enc(m): [c = (1 + n)^m r^n mod n^2] for random [r ∈ Z_n^*].
    - dec(c): [m = L(c^λ mod n^2) · μ mod n] with [L(u) = (u - 1)/n]. *)

open Ppgr_bigint

type pubkey = {
  n : Bigint.t;
  n2 : Bigint.t; (* n^2 *)
}

type seckey

val keygen : Ppgr_rng.Rng.t -> bits:int -> seckey * pubkey
(** [bits] is the size of the modulus [n] (each prime is [bits/2]).
    @raise Invalid_argument for [bits < 16]. *)

val pubkey_of : seckey -> pubkey

val encrypt : Ppgr_rng.Rng.t -> pubkey -> Bigint.t -> Bigint.t
(** Plaintext is reduced modulo [n].  Ciphertexts are elements of
    [Z_{n^2}]. *)

val decrypt : seckey -> Bigint.t -> Bigint.t

val add : pubkey -> Bigint.t -> Bigint.t -> Bigint.t
(** [E(a) -> E(b) -> E(a + b mod n)]: ciphertext multiplication. *)

val add_clear : pubkey -> Bigint.t -> Bigint.t -> Bigint.t
(** [E(a) -> k -> E(a + k mod n)]. *)

val scale : pubkey -> Bigint.t -> Bigint.t -> Bigint.t
(** [E(a) -> k -> E(k a mod n)]: ciphertext exponentiation. *)

val neg : pubkey -> Bigint.t -> Bigint.t

val rerandomize : Ppgr_rng.Rng.t -> pubkey -> Bigint.t -> Bigint.t
(** Multiply by a fresh encryption of zero. *)

open Ppgr_bigint
open Ppgr_rng

type pubkey = {
  n : Bigint.t;
  n2 : Bigint.t;
}

type seckey = {
  pk : pubkey;
  lambda : Bigint.t; (* lcm(p-1, q-1) *)
  mu : Bigint.t; (* lambda^{-1} mod n *)
}

let lcm a b = Bigint.div (Bigint.mul a b) (Bigint.gcd a b)

let keygen rng ~bits =
  if bits < 16 then invalid_arg "Paillier.keygen: modulus too small";
  let rand = Rng.as_prime_rand rng in
  let half = bits / 2 in
  let rec pick () =
    let p = Prime.random_prime rand ~bits:half in
    let q = Prime.random_prime rand ~bits:(bits - half) in
    if Bigint.equal p q then pick ()
    else begin
      let n = Bigint.mul p q in
      (* gcd(n, (p-1)(q-1)) = 1 holds for distinct primes of equal
         size; guard anyway. *)
      let phi = Bigint.mul (Bigint.pred p) (Bigint.pred q) in
      if not (Bigint.equal (Bigint.gcd n phi) Bigint.one) then pick ()
      else (p, q, n)
    end
  in
  let p, q, n = pick () in
  let pk = { n; n2 = Bigint.mul n n } in
  let lambda = lcm (Bigint.pred p) (Bigint.pred q) in
  let mu = Bigint.invmod lambda n in
  ({ pk; lambda; mu }, pk)

let pubkey_of sk = sk.pk

(* (1 + n)^m = 1 + m n (mod n^2): the binomial theorem collapses. *)
let g_pow_m pk m =
  Bigint.erem (Bigint.succ (Bigint.mul m pk.n)) pk.n2

let random_unit rng pk =
  let rec go () =
    let r = Rng.bigint_below rng pk.n in
    if Bigint.equal (Bigint.gcd r pk.n) Bigint.one && not (Bigint.is_zero r) then r
    else go ()
  in
  go ()

let encrypt rng pk m =
  let m = Bigint.erem m pk.n in
  let r = random_unit rng pk in
  Bigint.erem (Bigint.mul (g_pow_m pk m) (Bigint.powmod r pk.n pk.n2)) pk.n2

let l_function pk u = Bigint.div (Bigint.pred u) pk.n

let decrypt sk c =
  let pk = sk.pk in
  let u = Bigint.powmod c sk.lambda pk.n2 in
  Bigint.erem (Bigint.mul (l_function pk u) sk.mu) pk.n

let add pk a b = Bigint.erem (Bigint.mul a b) pk.n2
let add_clear pk a k = Bigint.erem (Bigint.mul a (g_pow_m pk (Bigint.erem k pk.n))) pk.n2
let scale pk a k = Bigint.powmod a (Bigint.erem k pk.n) pk.n2
let neg pk a = Bigint.invmod a pk.n2
let rerandomize rng pk a = add pk a (encrypt rng pk Bigint.zero)

open Ppgr_bigint
open Ppgr_hash

type t = {
  key : Bytes.t;
  nonce : Bytes.t;
  mutable counter : int;
  mutable buf : Bytes.t;
  mutable pos : int;
}

let of_key key =
  if Bytes.length key <> 32 then invalid_arg "Rng.of_key: key must be 32 bytes";
  {
    key = Bytes.copy key;
    nonce = Bytes.make 12 '\000';
    counter = 0;
    buf = Bytes.create 0;
    pos = 0;
  }

let create ~seed = of_key (Sha256.digest_string seed)

let refill t =
  t.buf <- Chacha20.block ~key:t.key ~nonce:t.nonce ~counter:t.counter;
  t.counter <- t.counter + 1;
  t.pos <- 0

let byte t =
  if t.pos >= Bytes.length t.buf then refill t;
  let v = Char.code (Bytes.get t.buf t.pos) in
  t.pos <- t.pos + 1;
  v

let bytes t n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (byte t))
  done;
  out

let split t ~label =
  (* Key the child off the parent's key and the label; independent of the
     parent's stream position so splitting is order-insensitive. *)
  let child_key = Sha256.hmac ~key:t.key (Bytes.of_string ("split:" ^ label)) in
  of_key child_key

let bool t = byte t land 1 = 1

let int_below t bound =
  if bound <= 0 then invalid_arg "Rng.int_below: bound must be positive";
  if bound = 1 then 0
  else begin
    (* Rejection sampling over the smallest covering power of 256. *)
    let rec nbytes b acc = if b = 0 then acc else nbytes (b lsr 8) (acc + 1) in
    let k = nbytes (bound - 1) 0 in
    let limit = 1 lsl (8 * k) in
    let cutoff = limit - (limit mod bound) in
    let rec go () =
      let v = ref 0 in
      for _ = 1 to k do
        v := (!v lsl 8) lor byte t
      done;
      if !v < cutoff then !v mod bound else go ()
    in
    go ()
  end

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: empty range";
  lo + int_below t (hi - lo + 1)

let bigint_bits t bits =
  if bits < 0 then invalid_arg "Rng.bigint_bits: negative";
  if bits = 0 then Bigint.zero
  else begin
    let nb = (bits + 7) / 8 in
    let b = bytes t nb in
    (* Mask excess top bits. *)
    let excess = (8 * nb) - bits in
    if excess > 0 then begin
      let top = Char.code (Bytes.get b 0) land (0xFF lsr excess) in
      Bytes.set b 0 (Char.chr top)
    end;
    Bigint.of_bytes_be b
  end

let bigint_below t bound =
  if Bigint.sign bound <= 0 then invalid_arg "Rng.bigint_below: bound must be positive";
  let bits = Bigint.numbits bound in
  let rec go () =
    let v = bigint_bits t bits in
    if Bigint.compare v bound < 0 then v else go ()
  in
  go ()

let bigint_in_range t ~lo ~hi =
  if Bigint.compare hi lo < 0 then invalid_arg "Rng.bigint_in_range: empty range";
  Bigint.add lo (bigint_below t (Bigint.succ (Bigint.sub hi lo)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int_below t (Array.length a))

let as_prime_rand t : Prime.rand = fun bound -> bigint_below t bound

module Splitmix = struct
  (* SplitMix64 adapted to OCaml's 63-bit ints: state evolves with the
     standard 64-bit constants truncated into the native word; outputs are
     folded to 62 bits.  Statistical quality is ample for simulation. *)
  type state = { mutable s : int }

  let create seed = { s = seed land max_int }

  let gamma = 0x1E3779B97F4A7C15 (* 64-bit constants with the top bit dropped to fit native int *)

  let next st =
    st.s <- (st.s + gamma) land max_int;
    let z = st.s in
    let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
    let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
    (z lxor (z lsr 31)) land ((1 lsl 62) - 1)

  let int_below st bound =
    if bound <= 0 then invalid_arg "Splitmix.int_below: bound must be positive";
    next st mod bound

  (* Use 53 bits so the quotient is exact in a double and strictly
     below 1 (62-bit values near the top would round up to 1.0). *)
  let float st = float_of_int (next st lsr 9) /. float_of_int (1 lsl 53)
end

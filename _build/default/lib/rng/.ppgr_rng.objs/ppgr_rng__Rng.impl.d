lib/rng/rng.ml: Array Bigint Bytes Chacha20 Char Ppgr_bigint Ppgr_hash Prime Sha256

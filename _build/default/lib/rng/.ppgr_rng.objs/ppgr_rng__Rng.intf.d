lib/rng/rng.mli: Bigint Bytes Ppgr_bigint Prime

lib/rng/chacha20.ml: Array Bytes Char

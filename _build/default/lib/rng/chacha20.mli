(** ChaCha20 block function (RFC 8439) used as a pseudorandom generator.

    Only the keystream is needed here (no encryption API): given a 32-byte
    key and a 12-byte nonce, [block] produces the 64-byte keystream block
    at a given counter. *)

val block : key:Bytes.t -> nonce:Bytes.t -> counter:int -> Bytes.t
(** @raise Invalid_argument on wrong key/nonce sizes. *)

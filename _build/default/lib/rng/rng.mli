(** Deterministic random number generation.

    Two generators:

    - {!t}: a ChaCha20-keystream CSPRNG, seeded from a string or bytes
      (through SHA-256), suitable for all cryptographic sampling in the
      protocols.  Deterministic: the same seed yields the same stream,
      which the security-game harnesses and tests rely on.
    - {!Splitmix}: SplitMix64, a tiny fast non-cryptographic generator for
      simulation noise (network topologies, workload synthesis).

    Generators are mutable and single-owner; use {!split} to derive an
    independent stream for a sub-component. *)

open Ppgr_bigint

type t

val create : seed:string -> t
(** Seed through SHA-256 of the given string. *)

val of_key : Bytes.t -> t
(** Seed from a raw 32-byte key. *)

val split : t -> label:string -> t
(** Derive an independent generator; streams for distinct labels are
    independent, and splitting does not disturb the parent stream. *)

val bytes : t -> int -> Bytes.t
(** Next [n] bytes of the stream. *)

val byte : t -> int
val bool : t -> bool

val int_below : t -> int -> int
(** Uniform in [[0, bound)]; [bound >= 1]. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Uniform in [[lo, hi]] inclusive. *)

val bigint_bits : t -> int -> Bigint.t
(** Uniform in [[0, 2^bits)]. *)

val bigint_below : t -> Bigint.t -> Bigint.t
(** Uniform in [[0, bound)] by rejection; [bound >= 1]. *)

val bigint_in_range : t -> lo:Bigint.t -> hi:Bigint.t -> Bigint.t
(** Uniform in [[lo, hi]] inclusive. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** A uniform permutation of [0 .. n-1]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

(** {1 Bigint compatibility} *)

val as_prime_rand : t -> Prime.rand
(** Adapter for the {!Prime} API. *)

(** SplitMix64: fast non-cryptographic generator for simulations. *)
module Splitmix : sig
  type state

  val create : int -> state
  val next : state -> int
  (** 62-bit non-negative value. *)

  val int_below : state -> int -> int
  val float : state -> float
  (** Uniform in [[0, 1)]. *)
end

lib/zkp/schnorr.ml: Bigint List Ppgr_bigint Ppgr_group Ppgr_hash Ppgr_rng Rng Sha256

(** The attribute and gain model of §III-A.

    A questionnaire has [m] attributes; the first [t] are "equal to"
    attributes (the initiator prefers values near its criterion — age,
    blood pressure) and the rest are "greater than" attributes (the
    bigger past a threshold the better — number of friends, income).
    Attribute values are [d1]-bit and weights [d2]-bit unsigned integers.

    Gain of participant [j] (Definition 1):

    [g_j = Σ_{k>t} w_k (v^j_k - v^0_k)  -  Σ_{k<=t} w_k (v^j_k - v^0_k)^2]

    The framework actually ranks by the {e partial gain}

    [p_j = Σ_{k>t} w_k v^j_k - Σ_{k<=t} (w_k (v^j_k)^2 - 2 w_k v^j_k v^0_k)]

    which differs from [g_j] by a constant depending only on the
    initiator's secrets, so it induces the same ranking while hiding part
    of the criterion. *)

open Ppgr_bigint
open Ppgr_rng

type spec = {
  m : int; (* total attributes *)
  t : int; (* leading "equal to" attributes, 0 <= t <= m *)
  d1 : int; (* attribute value bits *)
  d2 : int; (* weight bits *)
}

let spec ~m ~t ~d1 ~d2 =
  if m <= 0 || t < 0 || t > m || d1 <= 0 || d2 <= 0 then
    invalid_arg "Attrs.spec: invalid dimensions";
  { m; t; d1; d2 }

type criterion = {
  v0 : int array; (* m preferred values, d1-bit *)
  w : int array; (* m weights, d2-bit *)
}

type info = int array (* a participant's m answers, d1-bit *)

let check_range bits name vs =
  Array.iter
    (fun v ->
      if v < 0 || v >= 1 lsl bits then
        invalid_arg (Printf.sprintf "Attrs: %s value %d out of %d-bit range" name v bits))
    vs

let check_criterion s c =
  if Array.length c.v0 <> s.m || Array.length c.w <> s.m then
    invalid_arg "Attrs.check_criterion: wrong dimension";
  check_range s.d1 "criterion" c.v0;
  check_range s.d2 "weight" c.w

let check_info s (v : info) =
  if Array.length v <> s.m then invalid_arg "Attrs.check_info: wrong dimension";
  check_range s.d1 "info" v

let ceil_log2 n =
  let rec go k p = if p >= n then k else go (k + 1) (2 * p) in
  go 0 1

(** Exact gain (Definition 1), as a signed native integer (the parameter
    ranges of the evaluation keep it far below 62 bits). *)
let gain s c (v : info) =
  check_criterion s c;
  check_info s v;
  let acc = ref 0 in
  for k = 0 to s.m - 1 do
    let d = v.(k) - c.v0.(k) in
    if k < s.t then acc := !acc - (c.w.(k) * d * d)
    else acc := !acc + (c.w.(k) * d)
  done;
  !acc

(** Partial gain [p_j]; same ranking as {!gain}. *)
let partial_gain s c (v : info) =
  check_criterion s c;
  check_info s v;
  let acc = ref 0 in
  for k = 0 to s.m - 1 do
    if k < s.t then
      acc := !acc - (c.w.(k) * v.(k) * v.(k)) + (2 * c.w.(k) * v.(k) * c.v0.(k))
    else acc := !acc + (c.w.(k) * v.(k))
  done;
  !acc

(** [gain = partial_gain - gain_offset], the offset depending only on
    the initiator's secrets. *)
let gain_offset s c =
  check_criterion s c;
  let acc = ref 0 in
  for k = 0 to s.m - 1 do
    if k < s.t then acc := !acc + (c.w.(k) * c.v0.(k) * c.v0.(k))
    else acc := !acc + (c.w.(k) * c.v0.(k))
  done;
  !acc

(** Signed bit-width bound for partial gains (sign bit included).

    The dominant term is [w_k (v^j_k)^2] at [2 d1 + d2] bits, the cross
    term adds one bit, summing over [m] adds [ceil(log m)]; one more for
    the sign.  (The paper's §III-A states [log m + d1 + 2 d2 + 2], which
    undercounts the squared [d1]-bit attribute; we use the sound bound
    and EXPERIMENTS.md notes the discrepancy.) *)
let partial_gain_bits s = ceil_log2 s.m + (2 * s.d1) + s.d2 + 2 + 1

(** The participant-side vector [w'_j = [vg; ve*ve; ve; 1]] of Fig. 1
    step 2, as non-negative integers. *)
let participant_vector s (v : info) =
  check_info s v;
  let ve = Array.sub v 0 s.t and vg = Array.sub v s.t (s.m - s.t) in
  Array.concat
    [
      Array.map Bigint.of_int vg;
      Array.map (fun x -> Bigint.of_int (x * x)) ve;
      Array.map Bigint.of_int ve;
      [| Bigint.one |];
    ]

(** The initiator-side vector
    [v'_j = [rho wg; -rho we; 2 rho (we * ve0); rho_j]] of Fig. 1 step 3
    (signed integers; the caller maps them into the field). *)
let initiator_vector s c ~rho ~rho_j =
  check_criterion s c;
  let we = Array.sub c.w 0 s.t and wg = Array.sub c.w s.t (s.m - s.t) in
  let ve0 = Array.sub c.v0 0 s.t in
  Array.concat
    [
      Array.map (fun x -> Bigint.mul_int rho x) wg;
      Array.map (fun x -> Bigint.neg (Bigint.mul_int rho x)) we;
      Array.map2 (fun w v -> Bigint.mul_int rho (2 * w * v)) we ve0;
      [| rho_j |];
    ]

(** {1 Workload generation} *)

(** Uniform random criterion / information vectors for a spec. *)
let random_criterion rng s =
  {
    v0 = Array.init s.m (fun _ -> Rng.int_below rng (1 lsl s.d1));
    w = Array.init s.m (fun _ -> Rng.int_below rng (1 lsl s.d2));
  }

let random_info rng s : info =
  Array.init s.m (fun _ -> Rng.int_below rng (1 lsl s.d1))

(** Plaintext reference ranking: 1-based ranks, non-increasing gain,
    ties sharing the smallest applicable rank (participants with equal
    partial gain compute the same rank in the protocol). *)
let reference_ranks s c (infos : info array) =
  let gains = Array.map (partial_gain s c) infos in
  Array.map
    (fun g -> 1 + Array.fold_left (fun acc g' -> if g' > g then acc + 1 else acc) 0 gains)
    gains

(** The attribute and gain model of §III-A.

    A questionnaire has [m] attributes; the first [t] are "equal to"
    attributes (the initiator prefers values near its criterion) and the
    rest "greater than" (bigger is better).  Values are [d1]-bit and
    weights [d2]-bit unsigned integers.  The framework ranks by the
    {e partial gain}, which orders identically to the gain of
    Definition 1 while hiding part of the criterion. *)

open Ppgr_bigint

type spec = {
  m : int; (* total attributes *)
  t : int; (* leading "equal to" attributes, 0 <= t <= m *)
  d1 : int; (* attribute value bits *)
  d2 : int; (* weight bits *)
}

val spec : m:int -> t:int -> d1:int -> d2:int -> spec
(** @raise Invalid_argument on nonsensical dimensions. *)

type criterion = {
  v0 : int array; (* m preferred values, d1-bit *)
  w : int array; (* m weights, d2-bit *)
}

type info = int array
(** A participant's [m] answers, [d1]-bit each. *)

val check_criterion : spec -> criterion -> unit
val check_info : spec -> info -> unit

val gain : spec -> criterion -> info -> int
(** Definition 1:
    [Σ_{k>t} w_k (v_k - v0_k) - Σ_{k<=t} w_k (v_k - v0_k)^2]. *)

val partial_gain : spec -> criterion -> info -> int
(** Same ranking as {!gain}; differs by {!gain_offset}. *)

val gain_offset : spec -> criterion -> int
(** [gain = partial_gain - gain_offset]; depends only on the
    initiator's secrets. *)

val partial_gain_bits : spec -> int
(** Sound signed bit-width bound for partial gains (sign included). *)

val participant_vector : spec -> info -> Bigint.t array
(** The paper's [w'_j = [vg; ve*ve; ve; 1]] (Fig. 1 step 2). *)

val initiator_vector : spec -> criterion -> rho:Bigint.t -> rho_j:Bigint.t -> Bigint.t array
(** The paper's [v'_j = [rho wg; -rho we; 2 rho (we*ve0); rho_j]]
    (Fig. 1 step 3); entries are signed. *)

(** {1 Workload generation} *)

val random_criterion : Ppgr_rng.Rng.t -> spec -> criterion
val random_info : Ppgr_rng.Rng.t -> spec -> info

val reference_ranks : spec -> criterion -> info array -> int array
(** Plaintext ranking: 1-based, non-increasing gain, ties share the
    smallest applicable rank. *)

(** The "SS framework" baseline of §VII: the same phase-1 secure gain
    computation feeding Jónsson et al.'s secret-sharing sorting protocol
    instead of the unlinkable comparison phase.

    Each participant inputs its masked gain [beta] as Shamir shares; the
    parties sort with a Batcher network of SS comparisons, open the
    sorted sequence, and read off their own ranks.  The threshold is the
    SS maximum [(n-1)/2] (the paper's point: SS multiplication needs
    [2t+1] parties for degree reduction, halving the collusion
    resistance compared to the n-2 of the main framework). *)

open Ppgr_bigint
open Ppgr_dotprod
open Ppgr_shamir
open Ppgr_mpcnet

type costs = {
  engine : Engine.costs; (* mults / rounds / elements of the MPC *)
  field_mults_per_party : int; (* local field mults, averaged per party *)
  schedule : Cost.schedule;
  beta_bits : int;
}

type outcome = {
  ranks : int array;
  costs : costs;
}

(** MPC engines need [n >= 2t+1 >= 3]; with fewer parties the baseline
    degenerates to opening the values. *)
let min_parties = 3

let run ?(kappa = 40) rng (cfg : Framework.config) ~criterion ~infos : outcome =
  let n = Array.length infos in
  if n < min_parties then invalid_arg "Ss_framework.run: need at least 3 parties";
  let p1cfg = Phase1.config ~spec:cfg.Framework.spec ~h:cfg.Framework.h
      ~s_dim:cfg.Framework.s_dim () in
  let field = p1cfg.Phase1.field in
  let _secrets, interactions = Phase1.run rng p1cfg ~criterion ~infos in
  let l = Phase1.beta_bits p1cfg in
  let betas = Array.map (fun i -> i.Phase1.beta_unsigned) interactions in
  (* The comparison field must fit l + kappa masking bits. *)
  let e = Engine.create rng field ~n in
  Engine.reset_costs e;
  let prm = { Compare.l; kappa; log_prefix = true } in
  let ranks = Ss_sort.rank_via_sort e prm betas in
  let c = Engine.costs e in
  let field_bytes = (Bigint.numbits (Zfield.modulus field) + 7) / 8 in
  (* Message schedule: the paper bounds SS rounds by one round per
     multiplication-protocol invocation; our engine batches parallel
     multiplications, and we translate each engine round into one
     all-to-all exchange of the average per-round element count. *)
  let rounds = Stdlib.max 1 c.Engine.c_rounds in
  let elements_per_round = c.Engine.c_elements / rounds in
  let per_pair_bytes =
    (* Elements are spread over n(n-1) directed pairs. *)
    Stdlib.max 1 (elements_per_round * field_bytes / (n * (n - 1)))
  in
  let schedule =
    List.init rounds (fun _ ->
        {
          Cost.critical_ops = c.Engine.c_field_mults / (rounds * n);
          messages = Netsim.all_broadcast ~parties:n ~bytes:per_pair_bytes;
        })
  in
  {
    ranks;
    costs =
      {
        engine = c;
        field_mults_per_party = c.Engine.c_field_mults / n;
        schedule;
        beta_bits = l;
      };
  }

lib/grouprank/cost.ml: List Netsim Ppgr_mpcnet

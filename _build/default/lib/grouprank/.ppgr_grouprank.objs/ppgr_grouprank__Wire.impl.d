lib/grouprank/wire.ml: Array Bigint Buffer Bytes Char List Ppgr_bigint Ppgr_dotprod Ppgr_elgamal Ppgr_group Ppgr_zkp Printf

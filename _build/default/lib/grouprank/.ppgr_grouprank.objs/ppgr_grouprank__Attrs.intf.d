lib/grouprank/attrs.mli: Bigint Ppgr_bigint Ppgr_rng

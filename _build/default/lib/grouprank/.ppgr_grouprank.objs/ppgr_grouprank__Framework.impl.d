lib/grouprank/framework.ml: Array Attrs Bigint Cost List Netsim Phase1 Phase2 Ppgr_bigint Ppgr_dotprod Ppgr_group Ppgr_mpcnet

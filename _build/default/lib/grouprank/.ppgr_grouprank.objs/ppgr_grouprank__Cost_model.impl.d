lib/grouprank/cost_model.ml: Array Bigint Compare Cost Engine List Netsim Phase2 Ppgr_bigint Ppgr_dotprod Ppgr_group Ppgr_mpcnet Ppgr_rng Ppgr_shamir Rng Sort_network Ss_sort Stdlib

lib/grouprank/phase1.ml: Array Attrs Bigint Dot_product Ppgr_bigint Ppgr_dotprod Ppgr_rng Rng Zfield

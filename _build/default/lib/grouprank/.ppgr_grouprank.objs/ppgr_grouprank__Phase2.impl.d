lib/grouprank/phase2.ml: Array Bigint Cost List Netsim Ppgr_bigint Ppgr_elgamal Ppgr_group Ppgr_mpcnet Ppgr_rng Ppgr_zkp Printf Rng

lib/grouprank/attrs.ml: Array Bigint Ppgr_bigint Ppgr_rng Printf Rng

lib/grouprank/ss_framework.ml: Array Bigint Compare Cost Engine Framework List Netsim Phase1 Ppgr_bigint Ppgr_dotprod Ppgr_mpcnet Ppgr_shamir Ss_sort Stdlib Zfield

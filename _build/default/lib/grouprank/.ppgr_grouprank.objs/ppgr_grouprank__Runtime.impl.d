lib/grouprank/runtime.ml: Array Bigint Bytes Ppgr_bigint Ppgr_elgamal Ppgr_group Ppgr_rng Ppgr_zkp Printf Rng Wire

lib/grouprank/games.ml: Array Bigint List Phase2 Ppgr_bigint Ppgr_group Ppgr_rng Printf Rng

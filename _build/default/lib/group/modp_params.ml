(** Vendored safe-prime ("MODP") group moduli.

    The production moduli follow the RFC 2412 / RFC 3526 construction
    [p = 2^n - 2^(n-64) - 1 + 2^64 (floor(2^(n-130) pi) + c)] with the
    smallest [c] making [p] a safe prime; [bin/gen_modp.ml] regenerates
    them from scratch and the test suite re-checks safe-primality with
    Miller–Rabin.  All satisfy [p = 7 (mod 8)], so 2 is a quadratic
    residue generating the order-[(p-1)/2] subgroup.

    The [test_*] moduli are small safe primes (deterministically generated
    from seed "ppgr-test-groups") for fast unit tests; they offer no
    security. *)

open Ppgr_bigint

let hex parts = Bigint.of_string ("0x" ^ String.concat "" parts)

(* Second Oakley Group (RFC 2412): 1024-bit. *)
let p_1024 =
  hex
    [
      "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74";
      "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437";
      "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED";
      "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF";
    ]

(* RFC 3526 group 14: 2048-bit. *)
let p_2048 =
  hex
    [
      "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74";
      "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437";
      "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED";
      "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05";
      "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB";
      "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B";
      "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718";
      "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";
    ]

(* RFC 3526 group 15: 3072-bit, regenerated from scratch by
   [bin/gen_modp.ml] (pi-formula construction, smallest c = 1690314 —
   matching the published RFC value). *)
let p_3072 =
  hex
    [
      "ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74";
      "020bbea63b139b22514a08798e3404ddef9519b3cd3a431b302b0a6df25f1437";
      "4fe1356d6d51c245e485b576625e7ec6f44c42e9a637ed6b0bff5cb6f406b7ed";
      "ee386bfb5a899fa5ae9f24117c4b1fe649286651ece45b3dc2007cb8a163bf05";
      "98da48361c55d39a69163fa8fd24cf5f83655d23dca3ad961c62f356208552bb";
      "9ed529077096966d670c354e4abc9804f1746c08ca18217c32905e462e36ce3b";
      "e39e772c180e86039b2783a2ec07a28fb5c55df06f4c52c9de2bcbf695581718";
      "3995497cea956ae515d2261898fa051015728e5a8aaac42dad33170d04507a33";
      "a85521abdf1cba64ecfb850458dbef0a8aea71575d060c7db3970f85a6e1e4c7";
      "abf5ae8cdb0933d71e8c94e04a25619dcee3d2261ad2ee6bf12ffa06d98a0864";
      "d87602733ec86a64521f2b18177b200cbbe117577a615d6c770988c0bad946e2";
      "08e24fa074e5ab3143db5bfce0fd108e4b82d120a93ad2caffffffffffffffff";
    ]

(* Small test safe primes (64/96/128/256 bits). *)
let test_64 = Bigint.of_string "0x846663e83d3afaa3"
let test_96 = Bigint.of_string "0xd984cf42250b13d872a53573"
let test_128 = Bigint.of_string "0xe75fed529e994a5d5eee8e15fd6cdeab"

let test_256 =
  Bigint.of_string
    "0x896021ad93c506e2cf06405f5da7748eb0bae73e7d60779df0cd33bc273b70e3"

lib/group/modp_params.ml: Bigint Ppgr_bigint String

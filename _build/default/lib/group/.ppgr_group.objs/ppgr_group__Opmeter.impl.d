lib/group/opmeter.ml:

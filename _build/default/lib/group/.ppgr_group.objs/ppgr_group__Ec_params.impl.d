lib/group/ec_params.ml: Array Bigint Ec_curve List Ppgr_bigint Stdlib

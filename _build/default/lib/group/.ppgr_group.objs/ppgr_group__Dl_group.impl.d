lib/group/dl_group.ml: Array Bigint Bytes Group_intf List Modp_params Ppgr_bigint Ppgr_rng Rng

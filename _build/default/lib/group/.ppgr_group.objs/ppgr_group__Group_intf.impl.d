lib/group/group_intf.ml: Bigint Bytes Format Ppgr_bigint Ppgr_rng Rng

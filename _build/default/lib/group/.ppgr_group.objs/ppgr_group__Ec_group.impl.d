lib/group/ec_group.ml: Bigint Bytes Ec_curve Ec_params Format Group_intf Ppgr_bigint Ppgr_rng Rng

lib/group/ec_curve.ml: Array Bigint Group_intf List Ppgr_bigint

(** Global counter of full-size exponentiations (exponents on the order
    of the group size λ).

    Group-multiplication counts measured on a small test group do not
    transfer to a production group directly: the mults hidden inside a
    full exponentiation scale with λ.  The evaluation harness therefore
    records exponentiations separately — call sites in the ElGamal and
    Schnorr layers tick this meter — and predicts a production group's
    per-party multiplications as

    [exps * mults_per_exp(target) + (mults_test - exps * mults_per_exp(test))]

    where both [mults_per_exp] factors are measured.  Constant-size
    exponentiations (e.g. scaling a ciphertext by a small circuit
    constant) are deliberately not ticked; their cost is λ-independent
    and stays in the plain multiplication count. *)

let full_exps = ref 0
let tick () = incr full_exps
let tick_n k = full_exps := !full_exps + k
let count () = !full_exps
let reset () = full_exps := 0

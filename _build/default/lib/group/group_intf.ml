(** The abstract prime-order group the framework is built on.

    The paper needs a multiplicative group [G_q] of prime order [q] in
    which the decisional Diffie–Hellman problem is hard (§IV-B), with two
    concrete families: quadratic residues modulo a safe prime ("DL") and
    a prime-order elliptic-curve subgroup ("ECC").

    Every implementation counts group operations ([mul] and the operations
    a [pow] expands to), which is the cost metric of the paper's §VI-B
    analysis; the benchmark harness reads {!val-op_count}. *)

open Ppgr_bigint
open Ppgr_rng

module type GROUP = sig
  val name : string

  val security_bits : int
  (** Equivalent symmetric security level (80/112/128) per the NIST
      guidance the paper cites. *)

  type element

  val order : Bigint.t
  (** The prime order [q] of the group. *)

  val generator : element
  val identity : element
  val mul : element -> element -> element
  val inv : element -> element

  val pow : element -> Bigint.t -> element
  (** [pow x e] for any integer [e] (reduced modulo {!order}). *)

  val pow_gen : Bigint.t -> element
  (** [pow_gen e = pow generator e]. *)

  val equal : element -> element -> bool
  val is_identity : element -> bool

  val to_bytes : element -> Bytes.t
  (** Fixed-length canonical encoding ({!element_bytes} bytes). *)

  val of_bytes : Bytes.t -> element option
  (** Decode and validate group membership. *)

  val element_bytes : int
  (** Serialized size; doubles as the ciphertext-size unit [S_c] in the
      paper's communication analysis. *)

  val pp : Format.formatter -> element -> unit

  val random_scalar : Rng.t -> Bigint.t
  (** Uniform in [[1, q-1]]. *)

  val op_count : unit -> int
  (** Group multiplications performed since the last reset. *)

  val reset_op_count : unit -> unit
end

type group = (module GROUP)

(** Width-4 signed sliding-window (wNAF) recoding of a non-negative
    exponent: digits in {0, ±1, ±3, ±5, ±7}, most significant first.
    Shared by both group families' [pow]. *)
let wnaf4 (e : Bigint.t) : int list =
  if Bigint.sign e < 0 then invalid_arg "wnaf4: negative exponent";
  let digits = ref [] in
  let e = ref e in
  while not (Bigint.is_zero !e) do
    if Bigint.is_odd !e then begin
      (* Centered remainder modulo 16 in [-8, 8). *)
      let m = Bigint.to_int_exn (Bigint.logand !e (Bigint.of_int 15)) in
      let d = if m >= 8 then m - 16 else m in
      digits := d :: !digits;
      e := Bigint.sub !e (Bigint.of_int d)
    end
    else digits := 0 :: !digits;
    e := Bigint.shift_right !e 1
  done;
  !digits

(** Vendored SEC 2 / NIST curve parameters.

    The test suite validates each set: [p] and [n] prime, base point on
    curve, [n]·G = O.  [tiny ()] builds a toy curve over a small prime
    with its order found by exhaustive point counting — insecure, but it
    lets unit tests enumerate the whole group. *)

open Ppgr_bigint

let b = Bigint.of_string

(* secp160r1: the "160-bit ECC group" of the paper's evaluation. *)
let secp160r1 : Ec_curve.params =
  {
    name = "ECC-160";
    security_bits = 80;
    p = b "0xffffffffffffffffffffffffffffffff7fffffff";
    a = b "0xffffffffffffffffffffffffffffffff7ffffffc";
    b = b "0x1c97befc54bd7a8b65acf89f81d4d4adc565fa45";
    gx = b "0x4a96b5688ef573284664698968c38bb913cbfc82";
    gy = b "0x23a628553168947d59dcc912042351377ac5fb32";
    n = b "0x0100000000000000000001f4c8f927aed3ca752257";
    h = 1;
  }

(* secp224r1 (NIST P-224): 112-bit security level. *)
let secp224r1 : Ec_curve.params =
  {
    name = "ECC-224";
    security_bits = 112;
    p = b "0xffffffffffffffffffffffffffffffff000000000000000000000001";
    a = b "0xfffffffffffffffffffffffffffffffefffffffffffffffffffffffe";
    b = b "0xb4050a850c04b3abf54132565044b0b7d7bfd8ba270b39432355ffb4";
    gx = b "0xb70e0cbd6bb4bf7f321390b94a03c1d356c21122343280d6115c1d21";
    gy = b "0xbd376388b5f723fb4c22dfe6cd4375a05a07476444d5819985007e34";
    n = b "0xffffffffffffffffffffffffffff16a2e0b8f03e13dd29455c5c2a3d";
    h = 1;
  }

(* secp256r1 (NIST P-256): 128-bit security level. *)
let secp256r1 : Ec_curve.params =
  {
    name = "ECC-256";
    security_bits = 128;
    p = b "0xffffffff00000001000000000000000000000000ffffffffffffffffffffffff";
    a = b "0xffffffff00000001000000000000000000000000fffffffffffffffffffffffc";
    b = b "0x5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b";
    gx = b "0x6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296";
    gy = b "0x4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5";
    n = b "0xffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";
    h = 1;
  }

(* secp192r1 (NIST P-192): fallback / extra level. *)
let secp192r1 : Ec_curve.params =
  {
    name = "ECC-192";
    security_bits = 96;
    p = b "0xfffffffffffffffffffffffffffffffeffffffffffffffff";
    a = b "0xfffffffffffffffffffffffffffffffefffffffffffffffc";
    b = b "0x64210519e59c80e70fa7e9ab72243049feb8deecc146b9b1";
    gx = b "0x188da80eb03090f67cbf20eb43a18800f4ff0afd82ff1012";
    gy = b "0x07192b95ffc8da78631011ed6b24cdd573f977a11e794811";
    n = b "0xffffffffffffffffffffffff99def836146bc9b1b4d22831";
    h = 1;
  }

(* A toy curve for exhaustive unit tests over F_9739, found by scanning
   curve coefficients until the whole point group has prime order (so
   the subgroup is as large as the field and cofactor is 1).  Insecure;
   point counting is brute force, which is fine for a tiny p. *)
let tiny_with ~a ~b:bb () : Ec_curve.params =
  let p = 9739 in
  (* Count points and record quadratic residues. *)
  let sqrt_table = Array.make p [] in
  for y = 0 to p - 1 do
    let y2 = y * y mod p in
    sqrt_table.(y2) <- y :: sqrt_table.(y2)
  done;
  let order = ref 1 (* infinity *) in
  let points = ref [] in
  for x = 0 to p - 1 do
    let rhs = (((x * x mod p * x) + (a * x) + bb) mod p + p) mod p in
    List.iter
      (fun y ->
        incr order;
        points := (x, y) :: !points)
      sqrt_table.(rhs)
  done;
  (* Factor the group order and find a point of large prime order. *)
  let n = !order in
  let rec largest_prime_factor n d best =
    if d * d > n then if n > 1 then n else best
    else if n mod d = 0 then largest_prime_factor (n / d) d (Stdlib.max best d)
    else largest_prime_factor n (d + 1) best
  in
  let q = largest_prime_factor n 2 1 in
  let cof = n / q in
  (* Multiply candidate points by the cofactor until one has order q.
     Use simple affine arithmetic locally. *)
  let add_affine p1 p2 =
    match (p1, p2) with
    | None, q | q, None -> q
    | Some (x1, y1), Some (x2, y2) ->
        if x1 = x2 && (y1 + y2) mod p = 0 then None
        else begin
          let inv v =
            (* Fermat: v^(p-2) mod p. *)
            let rec pw b e acc =
              if e = 0 then acc
              else pw (b * b mod p) (e / 2) (if e land 1 = 1 then acc * b mod p else acc)
            in
            pw (((v mod p) + p) mod p) (p - 2) 1
          in
          let s =
            if x1 = x2 then ((3 * x1 * x1 mod p) + a) mod p * inv (2 * y1) mod p
            else (y2 - y1 + p) mod p * inv ((x2 - x1 + p) mod p) mod p
          in
          let x3 = ((s * s mod p) - x1 - x2 + (2 * p)) mod p in
          let y3 = ((s * ((x1 - x3 + p) mod p) mod p) - y1 + p) mod p in
          Some (x3, y3)
        end
  in
  let scalar_mul_affine k pt =
    let rec go k base acc =
      if k = 0 then acc
      else begin
        let acc = if k land 1 = 1 then add_affine acc base else acc in
        go (k lsr 1) (add_affine base base) acc
      end
    in
    go k (Some pt) None
  in
  let rec find_gen = function
    | [] -> invalid_arg "Ec_params.tiny: no generator found"
    | pt :: rest -> begin
        match scalar_mul_affine cof pt with
        | None -> find_gen rest
        | Some g ->
            if scalar_mul_affine q g = None then g else find_gen rest
      end
  in
  let gx, gy = find_gen !points in
  {
    name = "ECC-tiny";
    security_bits = 0;
    p = Bigint.of_int p;
    a = Bigint.of_int a;
    b = Bigint.of_int bb;
    gx = Bigint.of_int gx;
    gy = Bigint.of_int gy;
    n = Bigint.of_int q;
    h = cof;
  }

(* Scan b until the group order is prime; the discriminant must stay
   non-zero (4a^3 + 27b^2 <> 0 mod p). *)
let tiny_cache = ref None

let tiny () : Ec_curve.params =
  match !tiny_cache with
  | Some prm -> prm
  | None ->
      let is_prime n =
        let rec go d = if d * d > n then true else if n mod d = 0 then false else go (d + 1) in
        n > 1 && go 2
      in
      let rec search b =
        if b > 200 then invalid_arg "Ec_params.tiny: no prime-order curve found"
        else begin
          let disc = ((4 * 2 * 2 * 2) + (27 * b * b)) mod 9739 in
          if disc = 0 then search (b + 1)
          else begin
            let prm = tiny_with ~a:2 ~b ()
            in
            match Ppgr_bigint.Bigint.to_int_opt prm.Ec_curve.n with
            | Some q when prm.Ec_curve.h = 1 && is_prime q ->
                tiny_cache := Some prm;
                prm
            | _ -> search (b + 1)
          end
        end
      in
      search 1

lib/mpcnet/topology.mli: Ppgr_rng

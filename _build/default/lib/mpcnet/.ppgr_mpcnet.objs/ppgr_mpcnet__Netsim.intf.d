lib/mpcnet/netsim.mli: Topology

lib/mpcnet/netsim.ml: Array Float List Topology

lib/mpcnet/topology.ml: Array List Ppgr_rng Queue Rng

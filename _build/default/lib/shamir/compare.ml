(** Secure comparison of shared [l]-bit integers.

    This is the SS comparison primitive the baseline framework builds on
    (the role played by Nishide–Ohta [5] in the paper).  We use the
    classical masked-open bit-extraction construction, which has the same
    O(l) multiplication asymptotics; {!nishide_ohta_mults} exposes the
    paper's published constant (279l + 5) for the analytic curves, and
    EXPERIMENTS.md discusses the constant-factor difference.

    To compute [x >= y] for shared [x, y] in [[0, 2^l)]:

    + form [z = 2^l + x - y], a positive integer below [2^(l+1)] whose
      bit [l] is exactly [x >= y];
    + mask: jointly generate random shared bits [r_i] for
      [i < l + 1 + kappa], open [m = z + r] (no field wrap-around, so the
      sum holds over the integers and [m] statistically hides [z]);
    + un-mask bit [l]: over the integers
      [z div 2^l = m div 2^l - r div 2^l - u] with
      [u = [m mod 2^l < r mod 2^l]] the borrow out of the low bits, and
      the left side is 0 or 1 — so shares of bit [l] follow linearly from
      the shared high bits of [r] and one bitwise-less-than. *)

open Ppgr_bigint
open Ppgr_dotprod

type params = {
  l : int; (* inputs are l-bit *)
  kappa : int; (* statistical masking bits *)
  log_prefix : bool;
      (* prefix-OR in ceil(log2 l) rounds of parallel doubling (more
         multiplications, far fewer rounds) instead of an l-round ripple *)
}

let default_params ?(log_prefix = true) ~l () = { l; kappa = 40; log_prefix }

(** Number of multiplication-protocol invocations Nishide–Ohta [5] needs
    per comparison; used for the paper-faithful analytic cost curves. *)
let nishide_ohta_mults ~l = (279 * l) + 5

let check_field_large_enough e prm =
  let need = prm.l + 2 + prm.kappa in
  if Bigint.numbits (Zfield.modulus (Engine.field e)) <= need then
    invalid_arg "Compare: field too small for l + kappa"

(* OR of two shared bits: a + b - ab (one multiplication). *)
let or_batch e pairs =
  let prods = Engine.mul_batch e pairs in
  List.map2
    (fun (a, b) ab -> Engine.sub e (Engine.add e a b) ab)
    pairs prods

(* Suffix ORs by parallel doubling: out.(i) = OR(d_i .. d_{l-1}) in
   ceil(log2 l) rounds and about l log2 l multiplications. *)
let suffix_or_log e (d : Engine.shared array) =
  let l = Array.length d in
  let cur = ref (Array.copy d) in
  let gap = ref 1 in
  while !gap < l do
    let idx = ref [] in
    for i = l - 1 - !gap downto 0 do
      idx := i :: !idx
    done;
    let pairs = List.map (fun i -> ((!cur).(i), (!cur).(i + !gap))) !idx in
    let ors = or_batch e pairs in
    let next = Array.copy !cur in
    List.iter2 (fun i v -> next.(i) <- v) !idx ors;
    cur := next;
    gap := 2 * !gap
  done;
  !cur

(* Suffix ORs by an l-round ripple (fewer multiplications). *)
let suffix_or_ripple e (d : Engine.shared array) =
  let l = Array.length d in
  let out = Array.make l (Engine.of_public e Bigint.zero) in
  out.(l - 1) <- d.(l - 1);
  for i = l - 2 downto 0 do
    match or_batch e [ (out.(i + 1), d.(i)) ] with
    | [ v ] -> out.(i) <- v
    | _ -> assert false
  done;
  out

(** [bit_lt_public e ~a_bits ~b_bits] computes shares of [a < b] where
    [a] is public and [b] is given as shared bits, both little-endian of
    equal length, via a most-significant-first prefix-OR over the XOR
    difference. *)
let bit_lt_public ?(log_prefix = true) e ~(a_bits : int array)
    ~(b_bits : Engine.shared array) =
  let l = Array.length a_bits in
  if Array.length b_bits <> l then invalid_arg "Compare.bit_lt_public: length mismatch";
  if l = 0 then Engine.of_public e Bigint.zero
  else begin
    (* d_i = a_i XOR b_i, linear because a_i is public. *)
    let d =
      Array.init l (fun i ->
          if a_bits.(i) = 0 then b_bits.(i)
          else Engine.add_public e (Engine.neg e b_bits.(i)) Bigint.one)
    in
    let suffix = if log_prefix then suffix_or_log e d else suffix_or_ripple e d in
    let prefix = Array.make (l + 1) (Engine.of_public e Bigint.zero) in
    Array.blit suffix 0 prefix 0 l;
    (* e_i = prefix_i - prefix_{i+1} marks the highest differing bit;
       a < b iff b has a 1 there. *)
    let products =
      Engine.mul_batch e
        (List.init l (fun i ->
             (Engine.sub e prefix.(i) prefix.(i + 1), b_bits.(i))))
    in
    List.fold_left (Engine.add e) (Engine.of_public e Bigint.zero) products
  end

(** Shares of the bit [x >= y], for shared [x, y] in [[0, 2^l)]. *)
let ge e prm (x : Engine.shared) (y : Engine.shared) : Engine.shared =
  check_field_large_enough e prm;
  let l = prm.l in
  let lz = l + 1 in
  (* z = 2^l + x - y. *)
  let z = Engine.add_public e (Engine.sub e x y) (Bigint.nth_bit_weight l) in
  let r_bits, r = Engine.random_bits e (lz + prm.kappa) in
  let m = Engine.open_ e (Engine.add e z r) in
  (* High parts. *)
  let m_div = Bigint.shift_right m l in
  let r_high =
    (* Σ_{i >= l} 2^(i-l) r_i. *)
    let acc = ref (Engine.of_public e Bigint.zero) in
    for i = lz + prm.kappa - 1 downto l do
      acc := Engine.add e (Engine.scale e (Bigint.of_int 2) !acc) r_bits.(i)
    done;
    !acc
  in
  let m_low_bits = Bigint.bits_of (Bigint.erem m (Bigint.nth_bit_weight l)) ~width:l in
  let u =
    bit_lt_public ~log_prefix:prm.log_prefix e ~a_bits:m_low_bits
      ~b_bits:(Array.sub r_bits 0 l)
  in
  (* bit_l(z) = m_div - r_high - u  (an exact 0/1 integer identity). *)
  Engine.sub e (Engine.sub e (Engine.of_public e m_div) r_high) u

let lt e prm x y = Engine.add_public e (Engine.neg e (ge e prm x y)) Bigint.one
let gt e prm x y = lt e prm y x
let le e prm x y = ge e prm y x

(** Shares of [x = y] (two comparisons and one multiplication). *)
let eq e prm x y =
  let a = ge e prm x y and b = ge e prm y x in
  Engine.mul e a b

(** Batcher odd-even merge sorting networks — the data-independent
    comparator schedule behind the Jónsson et al. baseline
    (O(n log^2 n) comparators, "a variant of the merge sort"). *)

type comparator = int * int
(** [(i, j)] with [i < j]: sort so that wire [i] <= wire [j]. *)

type layer = comparator list
(** Comparators touching disjoint wires; one communication round. *)

type network = layer list

val generate : int -> network
(** Sorting network for any [n] (power-of-two network with comparators
    beyond wire [n-1] dropped; conceptually +infinity pads). *)

val comparator_count : network -> int
val depth : network -> int

val apply_plain : network -> compare:('a -> 'a -> int) -> 'a array -> 'a array
(** Run on a plain array (tests; 0-1-principle validation). *)

(** (t, n) Shamir secret sharing over a prime field.

    A secret [s] is hidden as the constant term of a random degree-[t]
    polynomial; party [i] (1-indexed) holds the evaluation at [x = i].
    Any [t+1] shares reconstruct [s] by Lagrange interpolation at 0; [t]
    shares reveal nothing.  The multiplication protocol of the MPC engine
    needs [n >= 2t + 1]. *)

open Ppgr_bigint
open Ppgr_dotprod

(* Evaluate a polynomial (coefficient list, constant first) at [x]. *)
let poly_eval f coeffs x =
  List.fold_right
    (fun c acc -> Zfield.add f c (Zfield.mul f x acc))
    coeffs Bigint.zero

(** [share rng f ~t ~n s] returns [n] shares, index [i] belonging to
    party [i+1] (evaluation point [i+1]). *)
let share (rng : Ppgr_rng.Rng.t) f ~t ~n secret =
  if t < 0 || n < t + 1 then invalid_arg "Shamir.share: need n >= t + 1";
  let coeffs = Zfield.reduce f secret :: List.init t (fun _ -> Zfield.random rng f) in
  Array.init n (fun i -> poly_eval f coeffs (Bigint.of_int (i + 1)))

(** Lagrange weights at 0 for evaluation points [ids] (1-indexed party
    numbers): [w_i = Π_{j≠i} x_j / (x_j - x_i)]. *)
let lagrange_weights_at_zero f ids =
  let xs = Array.map (fun id -> Zfield.of_int f id) ids in
  Array.mapi
    (fun i xi ->
      let num = ref Bigint.one and den = ref Bigint.one in
      Array.iteri
        (fun j xj ->
          if j <> i then begin
            num := Zfield.mul f !num xj;
            den := Zfield.mul f !den (Zfield.sub f xj xi)
          end)
        xs;
      Zfield.div f !num !den)
    xs

(** Reconstruct from (party-id, share) pairs; needs at least [t+1] of
    them and interpolates through all provided points. *)
let reconstruct f points =
  let ids = Array.map fst points in
  let ws = lagrange_weights_at_zero f ids in
  let acc = ref Bigint.zero in
  Array.iteri
    (fun i (_, s) -> acc := Zfield.add f !acc (Zfield.mul f ws.(i) s))
    points;
  !acc

(** Reconstruct taking the first [t+1] of a full share vector. *)
let reconstruct_first f ~t shares =
  reconstruct f (Array.init (t + 1) (fun i -> (i + 1, shares.(i))))

(** Secret-shared sorting (the Jónsson et al. baseline, [3]): Batcher's
    network with an oblivious compare-exchange at every comparator.

    A comparator on shares [x, y] computes [b = [x >= y]] with the
    {!Compare} primitive, then
    [lo = y + b (x - y) ... ] — concretely [hi' = x + y - lo] — using one
    extra multiplication, leaving the wires sorted ascending without
    anyone learning [b]. *)


type costs = Engine.costs

(** Sort an array of shared [l]-bit values ascending.  Comparators in
    the same network layer share communication rounds (their
    multiplications are batched). *)
let sort e prm (values : Engine.shared array) : Engine.shared array =
  let a = Array.copy values in
  let net = Sort_network.generate (Array.length a) in
  List.iter
    (fun layer ->
      (* Comparisons of one layer run in parallel. *)
      let bits =
        List.map (fun (i, j) -> Compare.ge e prm a.(i) a.(j)) layer
      in
      (* lo = x - b (x - y); hi = y + b (x - y). *)
      let diffs =
        List.map2
          (fun (i, j) b -> (b, Engine.sub e a.(i) a.(j)))
          layer bits
      in
      let prods = Engine.mul_batch e diffs in
      List.iter2
        (fun (i, j) p ->
          let lo = Engine.sub e a.(i) p in
          let hi = Engine.add e a.(j) p in
          a.(i) <- lo;
          a.(j) <- hi)
        layer prods)
    net;
  a

(** The full baseline sorting protocol for ranking: every party inputs a
    private value; the sorted sequence is opened; each party reads off
    the rank of its own input.  Ranks are 1-based in non-increasing
    order (rank 1 = largest), ties broken arbitrarily, to match the
    framework's ranking convention. *)
let rank_via_sort e prm (inputs : Ppgr_bigint.Bigint.t array) : int array =
  let shared = Array.map (Engine.input e) inputs in
  let sorted = sort e prm shared in
  let opened = Array.map (Engine.open_ e) sorted in
  (* opened is ascending; rank of v = n - (index of v) counting from the
     end, consuming duplicates so equal gains get distinct slots. *)
  let n = Array.length inputs in
  let used = Array.make n false in
  Array.map
    (fun v ->
      let rec find i =
        if i < 0 then invalid_arg "rank_via_sort: value missing from sorted output"
        else if (not used.(i)) && Ppgr_bigint.Bigint.equal opened.(i) v then i
        else find (i - 1)
      in
      let idx = find (n - 1) in
      used.(idx) <- true;
      n - idx)
    inputs

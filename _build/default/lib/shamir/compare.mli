(** Secure comparison of shared [l]-bit integers — the SS comparison
    primitive of the baseline framework (the role played by
    Nishide–Ohta [5] in the paper).

    Implementation: the classical masked-open bit-extraction
    construction (O(l) multiplications, like [5]); the paper's published
    constant is exposed as {!nishide_ohta_mults} for the paper-faithful
    analytic cost model.  See the module implementation for the
    derivation. *)


type params = {
  l : int; (* inputs are l-bit *)
  kappa : int; (* statistical masking bits *)
  log_prefix : bool;
      (* prefix-OR in ceil(log2 l) rounds of parallel doubling (more
         multiplications, far fewer rounds) instead of an l-round ripple *)
}

val default_params : ?log_prefix:bool -> l:int -> unit -> params
(** kappa = 40; [log_prefix] defaults to true. *)

val nishide_ohta_mults : l:int -> int
(** [279 l + 5], the multiplication count of the paper's primitive. *)

val bit_lt_public :
  ?log_prefix:bool ->
  Engine.t ->
  a_bits:int array ->
  b_bits:Engine.shared array ->
  Engine.shared
(** Shares of [a < b] for public [a] (little-endian bits) and shared
    bitwise [b]. *)

val ge : Engine.t -> params -> Engine.shared -> Engine.shared -> Engine.shared
(** Shares of the bit [x >= y], for [x, y] in [[0, 2^l)].
    @raise Invalid_argument if the field is smaller than [l + kappa + 2]
    bits. *)

val lt : Engine.t -> params -> Engine.shared -> Engine.shared -> Engine.shared
val gt : Engine.t -> params -> Engine.shared -> Engine.shared -> Engine.shared
val le : Engine.t -> params -> Engine.shared -> Engine.shared -> Engine.shared

val eq : Engine.t -> params -> Engine.shared -> Engine.shared -> Engine.shared
(** Two comparisons and one multiplication. *)

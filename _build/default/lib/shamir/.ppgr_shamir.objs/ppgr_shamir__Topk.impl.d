lib/shamir/topk.ml: Array Bigint Compare Engine List Ppgr_bigint

lib/shamir/engine.ml: Array Bigint List Ppgr_bigint Ppgr_dotprod Ppgr_rng Rng Shamir Zfield

lib/shamir/sort_network.ml: Array List Stdlib

lib/shamir/compare.mli: Engine

lib/shamir/ss_sort.ml: Array Compare Engine List Ppgr_bigint Sort_network

lib/shamir/sort_network.mli:

lib/shamir/engine.mli: Bigint Ppgr_bigint Ppgr_dotprod Ppgr_rng Zfield

lib/shamir/shamir.ml: Array Bigint List Ppgr_bigint Ppgr_dotprod Ppgr_rng Zfield

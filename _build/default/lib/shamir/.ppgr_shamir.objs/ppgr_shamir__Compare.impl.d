lib/shamir/compare.ml: Array Bigint Engine List Ppgr_bigint Ppgr_dotprod Zfield

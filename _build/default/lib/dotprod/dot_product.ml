(** The secure two-party dot-product protocol of Ioannidis, Grama and
    Atallah (§IV-A of the paper), over a prime field {!Zfield.t}.

    Bob holds a weight vector [w]; Alice holds a vector [v] and a random
    mask [alpha].  At the end Bob learns [w·v + alpha] and nothing else;
    Alice learns nothing.  Security rests on the received linear system
    being underdetermined (more unknowns than equations).

    Protocol (with [d = dim w + 1]):
    + Bob picks a random [s×s] matrix [Q], hides [w' = [w; 1]] as row [r]
      of a random [s×d] matrix [X], and sends [QX] together with blinded
      helper vectors [c' = c + R1 R2 f] and [g = R1 R3 f].
    + Alice extends her input to [v' = [v; alpha]], returns
      [a = Σ(QX v') - c'·v'] and [h = g·v'].
    + Bob computes [beta = (a + h R2/R3) / b = w·v + alpha] where
      [b] is the [r]-th column sum of [Q].

    Messages are explicit records so the network simulator can account
    for their size. *)

open Ppgr_bigint
open Ppgr_rng

type round1 = {
  qx : Zfield.mat; (* s × d *)
  c' : Bigint.t array; (* d *)
  g : Bigint.t array; (* d *)
}

type round2 = { a : Bigint.t; h : Bigint.t }

type bob_state = {
  b : Bigint.t; (* r-th column sum of Q (non-zero) *)
  r2 : Bigint.t;
  r3 : Bigint.t;
}

(* Field elements carried by each message (for bandwidth accounting). *)
let round1_elements ~s ~dim = (s * (dim + 1)) + (2 * (dim + 1))
let round2_elements = 2

let bob_round1 rng f ~w ~s =
  if s < 2 then invalid_arg "Dot_product.bob_round1: s must be >= 2";
  let d = Array.length w + 1 in
  let w' = Array.append w [| Bigint.one |] in
  let r = Rng.int_below rng s in
  (* Retry until the r-th column sum of Q is invertible (it almost
     always is; a zero would make Bob's final division impossible). *)
  let rec pick_q () =
    let q = Zfield.mat_random rng f ~rows:s ~cols:s in
    let sums = Zfield.col_sums f q in
    if Bigint.is_zero sums.(r) then pick_q () else (q, sums)
  in
  let q, sums = pick_q () in
  let x =
    Array.init s (fun i ->
        if i = r then w' else Zfield.random_vec rng f d)
  in
  let qx = Zfield.mat_mul f q x in
  (* c = Σ_{i≠r} (column-sum_i of Q) · x_i *)
  let c = Array.make d Bigint.zero in
  for i = 0 to s - 1 do
    if i <> r then begin
      for j = 0 to d - 1 do
        c.(j) <- Zfield.add f c.(j) (Zfield.mul f sums.(i) x.(i).(j))
      done
    end
  done;
  let fv = Zfield.random_vec rng f d in
  let r1 = Zfield.random_nonzero rng f in
  let r2 = Zfield.random_nonzero rng f in
  let r3 = Zfield.random_nonzero rng f in
  let r1r2 = Zfield.mul f r1 r2 in
  let r1r3 = Zfield.mul f r1 r3 in
  let c' = Array.mapi (fun j cj -> Zfield.add f cj (Zfield.mul f r1r2 fv.(j))) c in
  let g = Array.map (Zfield.mul f r1r3) fv in
  ({ b = sums.(r); r2; r3 }, { qx; c'; g })

let alice_round2 rng f ~v ~alpha (m : round1) =
  ignore rng;
  let v' = Array.append v [| Zfield.reduce f alpha |] in
  let y = Zfield.mat_vec f m.qx v' in
  let z = Array.fold_left (Zfield.add f) Bigint.zero y in
  let a = Zfield.sub f z (Zfield.dot f m.c' v') in
  let h = Zfield.dot f m.g v' in
  { a; h }

let bob_finish f (st : bob_state) (m : round2) =
  let ratio = Zfield.div f st.r2 st.r3 in
  Zfield.div f (Zfield.add f m.a (Zfield.mul f m.h ratio)) st.b

(** Reference plaintext computation for tests: [w·v + alpha] in the
    field. *)
let plain f ~w ~v ~alpha =
  Zfield.add f (Zfield.dot f w v) (Zfield.reduce f alpha)

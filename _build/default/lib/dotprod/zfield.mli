(** A prime field [Z_P] with vector/matrix helpers, used by the secure
    dot-product protocol and the Shamir substrate.

    Values are canonical {!Ppgr_bigint.Bigint.t} integers in [[0, P)];
    signed quantities map in and out through the centered representation
    (representatives above [P/2] read as negative).  Multiplication goes
    through a cached Montgomery context; a multiplication counter backs
    the SS cost model. *)

open Ppgr_bigint

type t

val create : Bigint.t -> t
(** @raise Invalid_argument unless the modulus is odd (primality is the
    caller's responsibility; the test suite checks the vendored ones). *)

val default : unit -> t
(** The 192-bit prime field over [2^192 - 237]. *)

val default_prime : Bigint.t
val modulus : t -> Bigint.t

(** {1 Cost accounting} *)

val mult_count : t -> int
val reset_mult_count : t -> unit

(** {1 Scalar operations} *)

val reduce : t -> Bigint.t -> Bigint.t
val of_int : t -> int -> Bigint.t
val add : t -> Bigint.t -> Bigint.t -> Bigint.t
val sub : t -> Bigint.t -> Bigint.t -> Bigint.t
val neg : t -> Bigint.t -> Bigint.t
val mul : t -> Bigint.t -> Bigint.t -> Bigint.t

val inv : t -> Bigint.t -> Bigint.t
(** @raise Division_by_zero on 0. *)

val div : t -> Bigint.t -> Bigint.t -> Bigint.t
val pow : t -> Bigint.t -> Bigint.t -> Bigint.t
val equal : t -> Bigint.t -> Bigint.t -> bool

val to_signed : t -> Bigint.t -> Bigint.t
(** Centered representative in [(-P/2, P/2]]. *)

val of_signed : t -> Bigint.t -> Bigint.t

(** {1 Randomness} *)

val random : Ppgr_rng.Rng.t -> t -> Bigint.t
val random_nonzero : Ppgr_rng.Rng.t -> t -> Bigint.t

(** {1 Vectors} *)

val vec_add : t -> Bigint.t array -> Bigint.t array -> Bigint.t array
val vec_sub : t -> Bigint.t array -> Bigint.t array -> Bigint.t array
val vec_scale : t -> Bigint.t -> Bigint.t array -> Bigint.t array

val dot : t -> Bigint.t array -> Bigint.t array -> Bigint.t
(** @raise Invalid_argument on dimension mismatch. *)

val random_vec : Ppgr_rng.Rng.t -> t -> int -> Bigint.t array

(** {1 Matrices} (dense, row-major [m.(row).(col)]) *)

type mat = Bigint.t array array

val mat_random : Ppgr_rng.Rng.t -> t -> rows:int -> cols:int -> mat
val mat_vec : t -> mat -> Bigint.t array -> Bigint.t array
val mat_mul : t -> mat -> mat -> mat
val col_sums : t -> mat -> Bigint.t array

lib/dotprod/dot_product.ml: Array Bigint Ppgr_bigint Ppgr_rng Rng Zfield

lib/dotprod/zfield.mli: Bigint Ppgr_bigint Ppgr_rng

lib/dotprod/zfield.ml: Array Bigint Ppgr_bigint Ppgr_rng

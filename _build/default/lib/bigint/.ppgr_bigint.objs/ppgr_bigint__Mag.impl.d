lib/bigint/mag.ml: Array Buffer Bytes Char Printf Stdlib String

lib/bigint/bigint.mli: Bytes Format

lib/bigint/bigint.ml: Array Bytes Format Hashtbl Mag Stdlib String

(* Magnitude (unsigned) arbitrary-precision arithmetic on little-endian
   arrays of 26-bit limbs.  This module is internal to [ppgr_bigint]; the
   signed public interface is {!Bigint}.

   Invariant: a magnitude is normalized, i.e. it has no most-significant
   zero limb.  Zero is the empty array.

   The limb width of 26 bits keeps every intermediate value of the
   schoolbook and Montgomery inner loops below 2^53, well inside OCaml's
   63-bit native [int] on 64-bit platforms. *)

let base_bits = 26
let base = 1 lsl base_bits
let mask = base - 1

let zero : int array = [||]

let is_zero (a : int array) = Array.length a = 0

let normalize (a : int array) =
  let n = Array.length a in
  let rec top i = if i > 0 && a.(i - 1) = 0 then top (i - 1) else i in
  let t = top n in
  if t = n then a else Array.sub a 0 t

(* Number of significant bits in a limb value (0 for 0). *)
let bits_of_limb v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let numbits (a : int array) =
  let n = Array.length a in
  if n = 0 then 0 else ((n - 1) * base_bits) + bits_of_limb a.(n - 1)

let of_int (v : int) =
  if v < 0 then invalid_arg "Mag.of_int: negative";
  if v = 0 then zero
  else begin
    let rec count v acc = if v = 0 then acc else count (v lsr base_bits) (acc + 1) in
    let n = count v 0 in
    let a = Array.make n 0 in
    let rec fill i v =
      if v <> 0 then begin
        a.(i) <- v land mask;
        fill (i + 1) (v lsr base_bits)
      end
    in
    fill 0 v;
    a
  end

(* Largest int representable without overflow concern: up to 62 bits. *)
let to_int_opt (a : int array) =
  if numbits a > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length a - 1 downto 0 do
      v := (!v lsl base_bits) lor a.(i)
    done;
    Some !v
  end

let compare (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let copy = Array.copy

let add (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  let lmax = max la lb in
  let r = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    r.(i) <- s land mask;
    carry := s lsr base_bits
  done;
  r.(lmax) <- !carry;
  normalize r

(* [sub a b] requires [a >= b]. *)
let sub (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  assert (compare a b >= 0);
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let add_int a v = add a (of_int v)
let sub_int a v = sub a (of_int v)

let mul_int (a : int array) (v : int) =
  if v < 0 || v >= base then invalid_arg "Mag.mul_int: limb out of range";
  if v = 0 || is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + 1) 0 in
    let carry = ref 0 in
    for i = 0 to la - 1 do
      let p = (a.(i) * v) + !carry in
      r.(i) <- p land mask;
      carry := p lsr base_bits
    done;
    r.(la) <- !carry;
    normalize r
  end

let mul_schoolbook (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          (* r.(i+j) < 2^26, ai*b.(j) < 2^52, carry < 2^27: sum < 2^53. *)
          let p = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- p land mask;
          carry := p lsr base_bits
        done;
        let rec prop k c =
          if c <> 0 then begin
            let p = r.(k) + c in
            r.(k) <- p land mask;
            prop (k + 1) (p lsr base_bits)
          end
        in
        prop (i + lb) !carry
      end
    done;
    normalize r
  end

let karatsuba_cutoff = ref 24

(* Split [a] at limb [k] into (low, high). *)
let split_at (a : int array) k =
  let la = Array.length a in
  if la <= k then (normalize (copy a), zero)
  else (normalize (Array.sub a 0 k), normalize (Array.sub a k (la - k)))

let shift_limbs (a : int array) k =
  if is_zero a then zero
  else begin
    let la = Array.length a in
    let r = Array.make (la + k) 0 in
    Array.blit a 0 r k la;
    r
  end

let rec mul (a : int array) (b : int array) =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else if min la lb < !karatsuba_cutoff then mul_schoolbook a b
  else begin
    let k = (max la lb + 1) / 2 in
    let a0, a1 = split_at a k in
    let b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    add (add z0 (shift_limbs z1 k)) (shift_limbs z2 (2 * k))
  end

let shift_left (a : int array) bits =
  if bits < 0 then invalid_arg "Mag.shift_left: negative";
  if is_zero a || bits = 0 then normalize (copy a)
  else begin
    let limb_shift = bits / base_bits in
    let bit_shift = bits mod base_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    if bit_shift = 0 then Array.blit a 0 r limb_shift la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bit_shift) lor !carry in
        r.(i + limb_shift) <- v land mask;
        carry := v lsr base_bits
      done;
      r.(la + limb_shift) <- !carry
    end;
    normalize r
  end

let shift_right (a : int array) bits =
  if bits < 0 then invalid_arg "Mag.shift_right: negative";
  if is_zero a || bits = 0 then normalize (copy a)
  else begin
    let limb_shift = bits / base_bits in
    let bit_shift = bits mod base_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let ln = la - limb_shift in
      let r = Array.make ln 0 in
      if bit_shift = 0 then Array.blit a limb_shift r 0 ln
      else begin
        for i = 0 to ln - 1 do
          let lo = a.(i + limb_shift) lsr bit_shift in
          let hi =
            if i + limb_shift + 1 < la then
              (a.(i + limb_shift + 1) lsl (base_bits - bit_shift)) land mask
            else 0
          in
          r.(i) <- lo lor hi
        done
      end;
      normalize r
    end
  end

let testbit (a : int array) i =
  let limb = i / base_bits in
  if limb >= Array.length a then false
  else (a.(limb) lsr (i mod base_bits)) land 1 = 1

(* Bitwise operations (used on non-negative values only). *)
let logand a b =
  let n = min (Array.length a) (Array.length b) in
  normalize (Array.init n (fun i -> a.(i) land b.(i)))

let logor a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  normalize
    (Array.init n (fun i ->
         (if i < la then a.(i) else 0) lor if i < lb then b.(i) else 0))

let logxor a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb in
  normalize
    (Array.init n (fun i ->
         (if i < la then a.(i) else 0) lxor if i < lb then b.(i) else 0))

(* Division by a single limb; returns (quotient, remainder). *)
let divmod_int (a : int array) (v : int) =
  if v <= 0 || v >= base then invalid_arg "Mag.divmod_int: limb out of range";
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / v;
    rem := cur mod v
  done;
  (normalize q, !rem)

(* Knuth Algorithm D.  Requires [Array.length bv >= 2] after
   normalization and [compare a b >= 0] is not required (handles any). *)
let divmod_knuth (a : int array) (b : int array) =
  let n = Array.length b in
  assert (n >= 2);
  if compare a b < 0 then (zero, normalize (copy a))
  else begin
    (* Normalize: shift so the top limb of the divisor has its high bit
       (of the 26-bit limb) set. *)
    let s = base_bits - bits_of_limb b.(n - 1) in
    let u = shift_left a s in
    let v = shift_left b s in
    let v = if Array.length v < n then Array.append v [| 0 |] else v in
    let m = Array.length u - n in
    let m = if m < 0 then 0 else m in
    (* Work array with one extra high limb. *)
    let w = Array.make (Array.length u + 1) 0 in
    Array.blit u 0 w 0 (Array.length u);
    let q = Array.make (m + 1) 0 in
    let vtop = v.(n - 1) in
    let vsec = if n >= 2 then v.(n - 2) else 0 in
    for j = m downto 0 do
      let num = (w.(j + n) lsl base_bits) lor w.(j + n - 1) in
      let qhat = ref (num / vtop) in
      let rhat = ref (num mod vtop) in
      if !qhat >= base then begin
        qhat := base - 1;
        rhat := num - (!qhat * vtop)
      end;
      let continue = ref true in
      while !continue && !rhat < base do
        if !qhat * vsec > (!rhat lsl base_bits) lor w.(j + n - 2) then begin
          decr qhat;
          rhat := !rhat + vtop
        end else continue := false
      done;
      (* Multiply and subtract: w[j..j+n] -= qhat * v. *)
      let borrow = ref 0 in
      let carry = ref 0 in
      for i = 0 to n - 1 do
        let p = (!qhat * v.(i)) + !carry in
        carry := p lsr base_bits;
        let d = w.(j + i) - (p land mask) - !borrow in
        if d < 0 then begin
          w.(j + i) <- d + base;
          borrow := 1
        end else begin
          w.(j + i) <- d;
          borrow := 0
        end
      done;
      let d = w.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add back. *)
        w.(j + n) <- d + base;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let sum = w.(j + i) + v.(i) + !carry2 in
          w.(j + i) <- sum land mask;
          carry2 := sum lsr base_bits
        done;
        w.(j + n) <- (w.(j + n) + !carry2) land mask
      end else w.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = normalize (Array.sub w 0 n) in
    (normalize q, shift_right r s)
  end

let divmod (a : int array) (b : int array) =
  if is_zero b then raise Division_by_zero;
  if Array.length b = 1 then begin
    let q, r = divmod_int a b.(0) in
    (q, of_int r)
  end
  else divmod_knuth a b

let rem a b = snd (divmod a b)
let div a b = fst (divmod a b)

let to_string_hex (a : int array) =
  if is_zero a then "0"
  else begin
    let nb = numbits a in
    let nhex = (nb + 3) / 4 in
    let buf = Buffer.create nhex in
    for i = nhex - 1 downto 0 do
      let nibble =
        (if testbit a ((4 * i) + 3) then 8 else 0)
        lor (if testbit a ((4 * i) + 2) then 4 else 0)
        lor (if testbit a ((4 * i) + 1) then 2 else 0)
        lor if testbit a (4 * i) then 1 else 0
      in
      Buffer.add_char buf "0123456789abcdef".[nibble]
    done;
    Buffer.contents buf
  end

let of_string_hex (s : string) =
  let acc = ref zero in
  String.iter
    (fun c ->
      let v =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | '_' -> -1
        | _ -> invalid_arg "Mag.of_string_hex: bad character"
      in
      if v >= 0 then acc := add_int (shift_left !acc 4) v)
    s;
  !acc

let to_string_dec (a : int array) =
  if is_zero a then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go a =
      if not (is_zero a) then begin
        let q, r = divmod_int a 10_000_000 in
        if is_zero q then Buffer.add_string buf (string_of_int r)
        else begin
          go q;
          Buffer.add_string buf (Printf.sprintf "%07d" r)
        end
      end
    in
    go a;
    Buffer.contents buf
  end

let of_string_dec (s : string) =
  let acc = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
          acc := add_int (mul_int !acc 10) (Char.code c - Char.code '0')
      | '_' -> ()
      | _ -> invalid_arg "Mag.of_string_dec: bad character")
    s;
  !acc

(* Big-endian byte serialization. *)
let to_bytes (a : int array) =
  if is_zero a then Bytes.create 0
  else begin
    let nb = (numbits a + 7) / 8 in
    let b = Bytes.create nb in
    for i = 0 to nb - 1 do
      let byte = ref 0 in
      for k = 0 to 7 do
        if testbit a ((8 * i) + k) then byte := !byte lor (1 lsl k)
      done;
      Bytes.set b (nb - 1 - i) (Char.chr !byte)
    done;
    b
  end

let of_bytes (b : Bytes.t) =
  let acc = ref zero in
  Bytes.iter (fun c -> acc := add_int (shift_left !acc 8) (Char.code c)) b;
  !acc

(** Number-theoretic routines on {!Bigint.t}: probabilistic primality,
    prime generation, and modular square roots.

    Randomness is supplied by the caller as [random_below : t -> t]
    returning a uniform value in [[0, bound)]; this keeps the bigint
    library free of RNG dependencies. *)

type rand = Bigint.t -> Bigint.t

val is_probable_prime : ?rounds:int -> rand -> Bigint.t -> bool
(** Miller–Rabin with [rounds] random witnesses (default 32), preceded by
    trial division by small primes.  Deterministic for values < 3.3e24
    via fixed witness sets. *)

val next_prime : rand -> Bigint.t -> Bigint.t
(** Smallest probable prime strictly greater than the argument. *)

val random_prime : rand -> bits:int -> Bigint.t
(** Uniform [bits]-bit probable prime (top bit set). *)

val random_safe_prime : rand -> bits:int -> Bigint.t
(** [bits]-bit prime [p] with [(p-1)/2] also prime.  Slow for large
    [bits]; production groups use the vendored RFC 3526 constants. *)

val sqrt_mod : rand -> Bigint.t -> p:Bigint.t -> Bigint.t option
(** Tonelli–Shanks: a square root of [a] modulo the odd prime [p], or
    [None] if [a] is a non-residue. *)

val small_primes : int array
(** Primes below 1000, used for trial division (exposed for tests). *)
